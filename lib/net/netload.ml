(** Seeded load generation over the wire, and the end-to-end
    exactly-once audit — the network twin of {!Serve.Load}, measured
    where a caller actually sits: client-side round-trip time over a
    real socket, not pool-side sojourn.

    Submission is {e windowed closed-loop}: each connection keeps at
    most [window] requests in flight and submits the next one as soon
    as a response frees a slot.  (A fully open loop against a
    single-machine loopback server just measures the admission cap;
    the window keeps the server loaded without drowning the run in
    typed rejections, while still exposing queueing — a small request
    stuck behind a large one holds its slot and its latency shows
    it.)

    Every request is a [Synth] kernel whose checksum is a pure
    function of its size, so the client verifies each [Done] response
    against {!Serve.Load.expected_checksum} computed locally — a
    mismatch means a torn parallel write, a mis-routed response, or a
    corrupt frame.  The audit counts {b lost} (submitted, no response
    after the drain), {b duplicated} (two responses for one ticket),
    and {b mismatched} (wrong checksum) — all must be zero. *)

type spec = {
  requests : int;  (** total across all connections *)
  conns : int;
  tenants : int;
  seed : int;
  slo_s : float;
  tight_frac : float;
  sizes : (int * float) list;  (** (synth kernel n, weight) mix *)
  small_max : int;
      (** DRR-size threshold separating the small class in the report
          (match the router's [Size_aware] threshold to see the
          head-of-line effect) *)
  window : int;  (** max in-flight per connection *)
  drain_timeout_s : float;
}

let default_spec =
  {
    requests = 100_000;
    conns = 2;
    tenants = 8;
    seed = 0x5E12E;
    slo_s = 0.5;
    tight_frac = 0.05;
    sizes = [ (256, 0.80); (4096, 0.15); (32768, 0.05) ];
    small_max = 4;
    window = 64;
    drain_timeout_s = 120.;
  }

type class_lat = { count : int; p50_ms : float; p95_ms : float; p99_ms : float }

type report = {
  spec : spec;
  elapsed_s : float;
  submitted : int;
  completed : int;
  met : int;
  missed : int;
  rejected : int;  (** all typed rejections (full / shed / draining) *)
  cancelled : int;
  failed : int;
  closed : int;
  lost : int;
  duplicated : int;
  mismatched : int;
  throughput_rps : float;  (** completed / elapsed wall clock *)
  all : class_lat;  (** client-side RTT *)
  small : class_lat;  (** requests with DRR size <= [small_max] *)
  large : class_lat;
}

let percentile (sorted : float array) (p : float) : float =
  match Array.length sorted with
  | 0 -> nan
  | n ->
      let idx = int_of_float (p *. float_of_int (n - 1)) in
      sorted.(max 0 (min (n - 1) idx))

let class_of (samples : float list) : class_lat =
  let a = Array.of_list samples in
  Array.sort compare a;
  {
    count = Array.length a;
    p50_ms = 1e3 *. percentile a 0.50;
    p95_ms = 1e3 *. percentile a 0.95;
    p99_ms = 1e3 *. percentile a 0.99;
  }

let pick_weighted (rng : Sim.Prng.t) (weights : float array) : int =
  let total = Array.fold_left ( +. ) 0. weights in
  let x = Sim.Prng.float_range rng total in
  let acc = ref 0. and chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if x < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen

(* One connection's share of the run: submit [count] requests with a
   [window]-bounded closed loop, then return the per-request records
   for the audit. *)
type rec_out = {
  ticket : int;
  size_idx : int;
  drr_size : int;
  sent : float;
}

let drive_conn (spec : spec) (addr : Server.addr) ~(conn_idx : int)
    ~(count : int) : Client.t * rec_out array =
  let rng = Sim.Prng.create ~seed:(spec.seed + (conn_idx * 0x9E37)) in
  let sizes = Array.of_list (List.map fst spec.sizes) in
  let size_weights = Array.of_list (List.map snd spec.sizes) in
  let tenant_weights =
    Array.init (max 1 spec.tenants) (fun k -> 1. /. float_of_int (k + 1))
  in
  let base = sizes.(0) in
  let c = Client.connect ~client:(Printf.sprintf "load-%d" conn_idx) addr in
  let recs = Array.make count { ticket = -1; size_idx = 0; drr_size = 1; sent = 0. } in
  for i = 0 to count - 1 do
    Client.wait_inflight_below c ~submitted:i ~window:spec.window;
    let tenant = Printf.sprintf "t%d" (pick_weighted rng tenant_weights) in
    let si = pick_weighted rng size_weights in
    let n = sizes.(si) in
    let drr_size = max 1 (n / base) in
    let tight = Sim.Prng.float rng < spec.tight_frac in
    let deadline_us =
      int_of_float (1e6 *. (if tight then spec.slo_s /. 10. else spec.slo_s))
    in
    let sent = Mclock.now_s () in
    let ticket =
      Client.submit c ~tenant ~deadline_us ~size:drr_size (Wire.Synth { n })
    in
    recs.(i) <- { ticket; size_idx = si; drr_size; sent }
  done;
  (c, recs)

(** [run addr spec] drives [spec] against a live server at [addr] and
    audits the outcome end to end. *)
let run (addr : Server.addr) (spec : spec) : report =
  if spec.requests < 0 then invalid_arg "Netload.run: negative request count";
  if spec.conns < 1 then invalid_arg "Netload.run: need at least one connection";
  let sizes = Array.of_list (List.map fst spec.sizes) in
  let expected = Array.map Serve.Load.expected_checksum sizes in
  let per_conn = Array.make spec.conns (spec.requests / spec.conns) in
  (* distribute the remainder *)
  for i = 0 to (spec.requests mod spec.conns) - 1 do
    per_conn.(i) <- per_conn.(i) + 1
  done;
  let t0 = Mclock.now_s () in
  let results = Array.make spec.conns None in
  let threads =
    Array.init spec.conns (fun ci ->
        Thread.create
          (fun () ->
            let c, recs =
              drive_conn spec addr ~conn_idx:ci ~count:per_conn.(ci)
            in
            Client.drain c ~submitted:per_conn.(ci)
              ~timeout_s:spec.drain_timeout_s;
            results.(ci) <- Some (c, recs))
          ())
  in
  Array.iter Thread.join threads;
  let elapsed_s = Mclock.now_s () -. t0 in
  (* audit + latency classes *)
  let submitted = ref 0 in
  let completed = ref 0 and met = ref 0 and missed = ref 0 in
  let rejected = ref 0 and cancelled = ref 0 and failed = ref 0 in
  let closed = ref 0 and lost = ref 0 and mismatched = ref 0 in
  let duplicated = ref 0 in
  let all_l = ref [] and small_l = ref [] and large_l = ref [] in
  Array.iter
    (fun slot ->
      match slot with
      | None -> ()
      | Some (c, recs) ->
          duplicated := !duplicated + Client.duplicates c;
          Array.iter
            (fun (r : rec_out) ->
              if r.ticket >= 0 then begin
                incr submitted;
                match Client.try_response c r.ticket with
                | None -> incr lost
                | Some resp -> (
                    match resp.status with
                    | Wire.Done { met = m } ->
                        incr completed;
                        if m then incr met else incr missed;
                        if resp.value <> expected.(r.size_idx) then
                          incr mismatched;
                        let rtt = resp.at -. r.sent in
                        all_l := rtt :: !all_l;
                        if r.drr_size <= spec.small_max then
                          small_l := rtt :: !small_l
                        else large_l := rtt :: !large_l
                    | Wire.Rejected_full | Wire.Rejected_shed
                    | Wire.Rejected_draining ->
                        incr rejected
                    | Wire.Cancelled _ -> incr cancelled
                    | Wire.Failed -> incr failed
                    | Wire.Closed -> incr closed)
              end)
            recs;
          Client.bye c;
          Client.close c)
    results;
  {
    spec;
    elapsed_s;
    submitted = !submitted;
    completed = !completed;
    met = !met;
    missed = !missed;
    rejected = !rejected;
    cancelled = !cancelled;
    failed = !failed;
    closed = !closed;
    lost = !lost;
    duplicated = !duplicated;
    mismatched = !mismatched;
    throughput_rps =
      (if elapsed_s > 0. then float_of_int !completed /. elapsed_s else 0.);
    all = class_of !all_l;
    small = class_of !small_l;
    large = class_of !large_l;
  }

(** The audit holds iff nothing was lost, duplicated, or corrupted,
    and at least one request actually completed. *)
let audit_ok (r : report) : bool =
  r.lost = 0 && r.duplicated = 0 && r.mismatched = 0 && r.completed > 0

let pp_report (ppf : Format.formatter) (r : report) : unit =
  Format.fprintf ppf
    "@[<v>submitted %d over %d conns: completed %d (met %d, missed %d), \
     rejected %d, cancelled %d, failed %d, closed %d@,\
     audit: lost %d, duplicated %d, mismatched %d@,\
     throughput %.0f req/s over %.2f s@,\
     rtt all   n=%d p50 %.2f ms p95 %.2f ms p99 %.2f ms@,\
     rtt small n=%d p50 %.2f ms p95 %.2f ms p99 %.2f ms@,\
     rtt large n=%d p50 %.2f ms p95 %.2f ms p99 %.2f ms@]"
    r.submitted r.spec.conns r.completed r.met r.missed r.rejected r.cancelled
    r.failed r.closed r.lost r.duplicated r.mismatched r.throughput_rps
    r.elapsed_s r.all.count r.all.p50_ms r.all.p95_ms r.all.p99_ms
    r.small.count r.small.p50_ms r.small.p95_ms r.small.p99_ms r.large.count
    r.large.p50_ms r.large.p95_ms r.large.p99_ms
