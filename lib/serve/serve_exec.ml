(** The serving layer's differential-fuzz oracle: a TPAL program
    submitted {e through the pool} (admission → DRR → EDF dispatch →
    warm-session execution with the promotion hint installed) must
    produce a register file bit-identical to the sequential
    evaluator's — the same contract the battery's [hb-*] and [par-*]
    oracles enforce for the direct executors, extended across the
    whole serving path.  Driven by [tpal_fuzz --serve] and replayed in
    tier-1 by {!Suite_serve}. *)

open Tpal

let pool_config ?(chaos : Par.Chaos.plan option) ?(retries = 0)
    ~(domains : int) ~(heart_us : float) () : Pool.config =
  {
    Pool.default_config with
    runtime =
      {
        Par.Runtime.default_config with
        domains;
        heart_us;
        source = `Polling;
        poll_stride = 1;
        chaos;
      };
    (* fuzz programs are tiny; a generous lease keeps the watchdog
       thread out of the measurement entirely *)
    lease_s = 0.;
    retries;
  }

(** What a through-pool execution can come back as, with cancellation
    as a {e typed} outcome rather than an exception to untangle. *)
type served =
  [ `Done of (Task.t, Machine_error.t) result
    (** the machine ran; [Error] = it got stuck (a program-level
        fault, not a pool failure) *)
  | `Cancelled of Par.Runtime.cancel_reason
  | `Error of Pool.error ]

(** [run_outcome ?options ?domains ?heart_us ?chaos ?retries p] boots
    a fresh pool, executes [p] through it, closes the pool, and
    returns the typed outcome plus the pool statistics. *)
let run_outcome ?(options = Eval.default_options) ?(domains = 1)
    ?(heart_us = 50.) ?chaos ?(retries = 0) (p : Ast.program) :
    served * Pool.stats =
  let pool =
    Pool.create ~config:(pool_config ?chaos ~retries ~domains ~heart_us ()) ()
  in
  let finish r =
    let st = Pool.close pool in
    (r, st)
  in
  match Pool.submit pool ~tenant:"fuzz" (Pool.Tpal { prog = p; options }) with
  | Error e ->
      ignore (Pool.close pool);
      failwith
        (Fmt.str "Serve_exec: submit rejected on an empty pool (%a)"
           Pool.pp_error e)
  | Ok ticket -> (
      match Pool.await pool ticket with
      | Ok { outcome = Pool.Tpal_result r; _ } -> finish (`Done r)
      | Ok { outcome = Pool.Checksum _; _ } ->
          ignore (Pool.close pool);
          assert false (* a Tpal submission always yields Tpal_result *)
      | Error (Pool.Cancelled reason) -> finish (`Cancelled reason)
      | Error e -> finish (`Error e))

(** [run ?options ?domains ?heart_us p]: {!run_outcome} for callers
    that expect the request to complete — a request-body exception
    re-raises, any other pool error fails typed. *)
let run ?(options = Eval.default_options) ?(domains = 1) ?(heart_us = 50.)
    (p : Ast.program) : (Task.t, Machine_error.t) result * Pool.stats =
  match run_outcome ~options ~domains ~heart_us p with
  | `Done r, st -> (r, st)
  | `Error (Pool.Failed e), _ -> raise e
  | (`Cancelled _ | `Error _), _ ->
      failwith "Serve_exec: single request on a fresh pool unresolved"

(** [check ?domains ?options prog ~outputs] compares the through-pool
    execution against the sequential evaluator on [outputs], returning
    {!Fuzz.Diff.divergence}s ([serve-stuck] / [serve-outputs]), one
    domain count at a time. *)
let check ?(domains = [ 1; 2 ]) ?(options = Fuzz.Diff.with_heart 17)
    (prog : Ast.program) ~(outputs : Ast.reg list) : Fuzz.Diff.divergence list
    =
  match Eval.run ~options:{ options with heart = None } prog with
  | Error e ->
      [ { Fuzz.Diff.oracle = "serve-ref";
          detail = Fmt.str "reference run stuck: %a" Machine_error.pp e } ]
  | Ok { stop = Eval.Blocked j; _ } ->
      [ { Fuzz.Diff.oracle = "serve-ref";
          detail = Fmt.str "reference run blocked on j%d" j } ]
  | Ok refr ->
      let expected =
        List.map (fun r -> (r, Regfile.find_opt r refr.task.regs)) outputs
      in
      List.concat_map
        (fun d ->
          match run ~options ~domains:d prog with
          | Error e, _ ->
              [ { Fuzz.Diff.oracle = "serve-stuck";
                  detail = Fmt.str "domains=%d: %a" d Machine_error.pp e } ]
          | Ok task, _ ->
              Fuzz.Diff.compare_outputs ~oracle:"serve-outputs"
                ~what:(Fmt.str "served, domains=%d" d)
                expected
                (List.map
                   (fun r -> (r, Regfile.find_opt r task.regs))
                   outputs))
        domains
