(** Heartbeat-as-a-service: a multi-tenant execution pool that owns
    {e one warm} {!Par.Runtime} session and serves many requests
    through it — the ROADMAP's serving layer.

    The session's main task is a dispatch loop: it blocks on a
    condition variable until the {!Sched} core hands it a request
    (bounded admission → deficit-round-robin across tenants → EDF
    within a tenant → panic override for imminent deadlines), installs
    the request's deadline-derived {!Par.Runtime.set_urgency} hint so
    near-SLO work promotes its latent parallelism more eagerly, and
    executes the request body with the session's own
    [par_for]/[fork2] executor.  Worker domains are spawned once at
    {!create} and stay warm across requests — session reuse is the
    whole point: the committed BENCH_par.json history shows session
    setup dwarfing small kernels.

    Requests execute {e one at a time} per pool; each request is
    internally parallel across every domain of the pool (space-sharing
    {e within} a pool would dilute the heartbeat's outermost-first
    discipline — space-sharing across requests is instead provided by
    {!Net.Shard}, which runs several pools over disjoint domain sets
    behind a router).  Concurrency lives at the boundary: any number
    of client threads submit and await concurrently.

    Failure containment mirrors the PR 3 lease/watchdog machinery: a
    watchdog thread leases each in-flight request [lease_s] seconds;
    a request that overruns marks the pool {e degraded}
    ([stalls_detected] increments, new submissions are shed with a
    typed rejection while the wedged request holds the session) and
    the flag clears when the request finally completes.  Closing the
    pool resolves every still-queued request with the typed
    {!error.Pool_closed} — never by racing domain shutdown against a
    half-executed queue. *)

type work =
  | Kernel of { bench : Workloads.Real_bench.t; scale : int }
      (** a registry kernel; outcome is its checksum *)
  | Tpal of { prog : Tpal.Ast.program; options : Tpal.Eval.options }
      (** a TPAL program through the {!Fuzz.Tpal_drive} interpreter,
          forking on this pool's scheduler *)
  | Thunk of ((module Workloads.Exec.S) -> int)
      (** any checksum-returning computation against the session's
          executor (the synthetic-load and test entry point) *)

type outcome =
  | Checksum of int
  | Tpal_result of (Tpal.Task.t, Tpal.Machine_error.t) result
      (** [Error] = the machine got stuck; a program-level fault, not
          a pool failure *)

type reject = [ `Queue_full | `Shedding ]

type error =
  | Rejected of reject
      (** admission backpressure ([`Queue_full]) or degraded-mode load
          shedding ([`Shedding]) at submit time *)
  | Pool_closed
      (** the pool was closed while this request was still queued (or
          the submit raced [close]) *)
  | Timed_out  (** [await ~timeout_s] expired; the request itself may
                   still complete later *)
  | Cancelled of Par.Runtime.cancel_reason
      (** the request's task tree was cooperatively unwound: an
          explicit {!cancel}, a blown deadline, or the lease watchdog
          recovering the session *)
  | Retry_exhausted of { attempts : int }
      (** the request failed retryably [attempts] times and its
          tenant's retry budget ran dry — the typed end of the backoff
          ladder *)
  | Failed of exn  (** the request body (or the session) raised *)

let pp_error ppf : error -> unit = function
  | Rejected `Queue_full -> Fmt.pf ppf "rejected: queue full"
  | Rejected `Shedding -> Fmt.pf ppf "rejected: shedding (pool degraded)"
  | Pool_closed -> Fmt.pf ppf "pool closed"
  | Timed_out -> Fmt.pf ppf "await timed out"
  | Cancelled r -> Fmt.pf ppf "cancelled (%s)" (Par.Runtime.reason_name r)
  | Retry_exhausted { attempts } ->
      Fmt.pf ppf "retry budget exhausted after %d attempts" attempts
  | Failed e -> Fmt.pf ppf "failed: %s" (Printexc.to_string e)

type completion = {
  outcome : outcome;
  sojourn_s : float;  (** admission → completion, on the pool's clock *)
  met_deadline : bool;
}

type ticket = int

type config = {
  runtime : Par.Runtime.config;  (** the warm session: domain count,
                                     beat source, ♥ *)
  sched : Sched.config;  (** admission cap, DRR quantum, panic slack *)
  default_slo_s : float;  (** deadline for submits that give none *)
  lease_s : float;  (** wedged-request lease; ≤ 0 disables the
                        watchdog *)
  shed_when_degraded : bool;
      (** reject new work while a wedged request holds the session *)
  cancel_on_lease : bool;
      (** the watchdog also sets the wedged request's cancel token, so
          a cooperative (polling) request unwinds at its next beat and
          the session recovers instead of merely degrading.  A wedged
          request that never polls is still only flagged — OCaml
          domains cannot be preempted from outside. *)
  deadline_cancel_slack_s : float option;
      (** [Some s]: the watchdog cancels (reason [`Deadline]) any
          in-flight request more than [s] seconds past its deadline;
          [None] (default) never deadline-cancels — completion wins *)
  retries : int;
      (** per-tenant retry budget for retryable failures; 0 disables
          the retry machinery entirely *)
  retryable : exn -> bool;
      (** which request failures may consume retry budget; defaults to
          injected chaos faults ({!Par.Chaos.Injected}) only — real
          bugs should surface, not loop *)
  retry_backoff_s : float;  (** base delay before the first retry *)
  retry_backoff_max_s : float;  (** backoff clamp (see {!Sched.backoff_s}) *)
  max_restarts : int;
      (** warm session restarts after a session-fatal error before the
          pool gives up and fails over to the typed-drain path *)
  tracer : Obs.Trace.t option;
      (** when set, the pool records every admission / DRR–EDF
          dispatch / completion / degradation decision on a "server"
          track of this trace.  Pass the same tracer in
          [runtime.tracer] to interleave the worker domains' beats,
          steals and task spans in the same document. *)
}

let default_config =
  {
    runtime = { Par.Runtime.default_config with source = `Polling };
    sched = Sched.default_config;
    default_slo_s = 1.0;
    lease_s = 10.;
    shed_when_degraded = true;
    cancel_on_lease = true;
    deadline_cancel_slack_s = None;
    retries = 0;
    retryable = (function Par.Chaos.Injected _ -> true | _ -> false);
    retry_backoff_s = 0.001;
    retry_backoff_max_s = 0.05;
    max_restarts = 1;
    tracer = None;
  }

type t = {
  cfg : config;
  m : Mutex.t;
  cv : Condition.t;
      (** one condition for all transitions (submission, completion,
          close, boot): every wake is a [broadcast] — a [signal] could
          wake an awaiter when the dispatch loop is the thread that
          must run *)
  sched : work Sched.t;
  results : (ticket, (completion, error) result) Hashtbl.t;
  cbs : (ticket, (completion, error) result -> unit) Hashtbl.t;
      (** per-submit resolution hooks ([submit ~on_resolve]); fired
          exactly once, after the result lands in [results] *)
  mutable pending_cbs : (unit -> unit) list;
      (** resolution hooks staged under [m] (newest first) and invoked
          by {!run_cbs} after the mutex drops — callbacks never run
          under the pool lock, so a hook may submit, await or close
          without deadlocking *)
  mutable next_id : int;
  mutable submitted : int;  (** all submit attempts on an open pool *)
  mutable shed : int;
  mutable failures : int;
  mutable cancelled : int;  (** tickets resolved [Pool_closed] *)
  mutable cancels : int;  (** tickets resolved [Cancelled _] *)
  mutable retried : int;  (** failed attempts re-admitted for retry *)
  mutable restarts : int;  (** warm session restarts performed *)
  mutable running : (ticket * float) option;  (** in-flight id, start *)
  mutable running_deadline : float;  (** in-flight absolute deadline *)
  mutable cancel_tok : Par.Runtime.cancel_token option;
      (** the in-flight request's token — the handle the watchdog and
          {!cancel} use to unwind it from outside the session *)
  mutable retry_q : (float * work Sched.req) list;
      (** backoff parking lot, sorted by ready time; re-admitted to
          [sched] by the dispatch loop once mature.  The request keeps
          its original ticket — that id {e is} the idempotency key: an
          awaiter observes exactly one resolution no matter how many
          attempts ran *)
  attempts : (ticket, int) Hashtbl.t;  (** dispatch count per live ticket *)
  budgets : (string, int) Hashtbl.t;
      (** per-tenant remaining retry budget (seeded from [cfg.retries]
          on first use) *)
  mutable flagged : ticket option;  (** in-flight request past its lease *)
  mutable stalls : int;
  mutable degraded : bool;
  mutable close_requested : bool;
  mutable shutdown_done : bool;
  mutable up : bool;  (** the session's dispatch loop has started *)
  mutable attempt_up : bool;
      (** the {e current} session attempt's dispatch loop has started —
          gates warm restart so a boot failure is never retried into a
          spin *)
  mutable failed : exn option;  (** the session itself died *)
  mutable rt_stats : Par.Runtime.stats option;  (** set at teardown *)
  mutable domain : unit Domain.t option;
  mutable watchdog : Thread.t option;
  watchdog_stop : bool Atomic.t;
  ring : Obs.Ring.t option;
      (** the "server" trace track; written under [m] only, so the
          single-writer ring discipline holds *)
  lat_all : Obs.Hist.t;  (** sojourn histogram, all completions *)
  lat_tenant : (string, Obs.Hist.t) Hashtbl.t;  (** per-tenant sojourns *)
}

type stats = {
  submitted : int;
  shed : int;
  served : int;
  met : int;
  missed : int;
  failures : int;
  cancelled : int;
  cancels : int;  (** cooperative cancellations delivered *)
  retried : int;  (** failed attempts re-admitted with backoff *)
  restarts : int;  (** warm session restarts *)
  queued : int;
  stalls_detected : int;
  degraded : bool;
  sched : Sched.stats;
  runtime : Par.Runtime.stats option;  (** available after [close] *)
  latency : Obs.Hist.summary;  (** sojourn p50/p95/p99 over completions *)
  latency_per_tenant : (string * Obs.Hist.summary) list;  (** by tenant name *)
}

let stats_locked (t : t) : stats =
  let sc = Sched.stats t.sched in
  {
    submitted = t.submitted;
    shed = t.shed;
    served = sc.served;
    met = sc.met;
    missed = sc.missed;
    failures = t.failures;
    cancelled = t.cancelled;
    cancels = t.cancels;
    retried = t.retried;
    restarts = t.restarts;
    queued = sc.queued;
    stalls_detected = t.stalls;
    degraded = t.degraded;
    sched = sc;
    runtime = t.rt_stats;
    latency = Obs.Hist.summary t.lat_all;
    latency_per_tenant =
      Hashtbl.fold
        (fun tenant h acc -> (tenant, Obs.Hist.summary h) :: acc)
        t.lat_tenant []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let stats (t : t) : stats =
  Mutex.lock t.m;
  let s = stats_locked t in
  Mutex.unlock t.m;
  s

(* ------------------------------------------------------------------ *)
(* Observability: the pool's trace track and latency accounting.
   Every helper below is called under [t.m], which is what makes the
   single-writer ring emission and the histogram updates safe. *)

let pemit (t : t) (e : Obs.Event.t) : unit =
  match (t.ring, t.cfg.tracer) with
  | Some ring, Some tr -> Obs.Trace.emit tr ring e
  | _ -> ()

let tenant_id (t : t) (name : string) : int =
  match t.cfg.tracer with Some tr -> Obs.Trace.intern tr name | None -> 0

(* Latency histograms are always on (a bucket increment per request,
   not gated on tracing): they power [stats.latency]. *)
let record_latency (t : t) ~(tenant : string) (sojourn_s : float) : unit =
  Obs.Hist.add_s t.lat_all sojourn_s;
  let h =
    match Hashtbl.find_opt t.lat_tenant tenant with
    | Some h -> h
    | None ->
        let h = Obs.Hist.create () in
        Hashtbl.add t.lat_tenant tenant h;
        h
  in
  Obs.Hist.add_s h sojourn_s

(* Every ticket resolution in the pool funnels through here: the
   result lands in [results] (under [m]) and the ticket's [on_resolve]
   hook, if any, is staged for {!run_cbs}.  Exactly-once by
   construction — the hook is removed as it is staged. *)
let resolve_locked (t : t) (id : ticket) (res : (completion, error) result) :
    unit =
  Hashtbl.replace t.results id res;
  match Hashtbl.find_opt t.cbs id with
  | Some cb ->
      Hashtbl.remove t.cbs id;
      t.pending_cbs <- (fun () -> cb res) :: t.pending_cbs
  | None -> ()

(* Invoke staged resolution hooks.  Call with [m] NOT held; every
   code path that may have staged a hook calls this right after its
   unlock.  A hook that raises is contained (counted as a failure of
   the hook, not of the pool). *)
let run_cbs (t : t) : unit =
  Mutex.lock t.m;
  let cbs = t.pending_cbs in
  t.pending_cbs <- [];
  Mutex.unlock t.m;
  List.iter (fun f -> try f () with _ -> ()) (List.rev cbs)

(* ------------------------------------------------------------------ *)
(* Request execution, inside the warm session. *)

let exec (w : work) : outcome =
  match w with
  | Kernel { bench; scale } ->
      Checksum (bench.run (module Par.Runtime.Exec) ~scale)
  | Thunk f -> Checksum (f (module Par.Runtime.Exec))
  | Tpal { prog; options } ->
      Tpal_result
        (match Fuzz.Par_exec.Drive.interpret ~options prog with
        | task -> Ok task
        | exception Fuzz.Tpal_drive.Stuck e -> Error e)

(* The session's main task.  Every Sched call happens under the mutex;
   the request body runs outside it (it is the long part, and awaiting
   clients must make progress on [results] meanwhile). *)
let serve_main (t : t) : unit =
  Mutex.lock t.m;
  t.up <- true;
  t.attempt_up <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  let rec loop () =
    Mutex.lock t.m;
    let next =
      let rec get () =
        if t.close_requested then None
        else begin
          let now = Mclock.now_s () in
          (* mature retries re-enter the scheduler under their original
             ticket; a queue that filled during the backoff resolves
             them with the same typed backpressure a fresh submit gets *)
          let due, later =
            List.partition (fun (ready, _) -> ready <= now) t.retry_q
          in
          t.retry_q <- later;
          List.iter
            (fun (_, (r : work Sched.req)) ->
              match Sched.admit t.sched r with
              | Ok () -> ()
              | Error `Queue_full ->
                  t.failures <- t.failures + 1;
                  Hashtbl.remove t.attempts r.id;
                  resolve_locked t r.id (Error (Rejected `Queue_full));
                  Condition.broadcast t.cv)
            due;
          match Sched.next t.sched ~now with
          | Some r -> Some r
          | None ->
              if t.retry_q = [] then begin
                Condition.wait t.cv t.m;
                get ()
              end
              else begin
                (* a retry is parked but not mature; stdlib [Condition]
                   has no timed wait, so nap toward its ready time *)
                let ready =
                  List.fold_left
                    (fun acc (rd, _) -> Float.min acc rd)
                    infinity t.retry_q
                in
                Mutex.unlock t.m;
                Thread.delay (Float.min 0.002 (Float.max 0.0002 (ready -. now)));
                Mutex.lock t.m;
                get ()
              end
        end
      in
      get ()
    in
    match next with
    | None ->
        (* close path: the typed Pool_closed teardown.  Everything
           still queued resolves here, under the mutex, BEFORE the
           session's main task returns — so domain shutdown never
           races a half-drained queue. *)
        let dropped = Sched.drain t.sched @ List.map snd t.retry_q in
        t.retry_q <- [];
        let now = Mclock.now_s () in
        List.iter
          (fun (r : work Sched.req) ->
            resolve_locked t r.id (Error Pool_closed);
            t.cancelled <- t.cancelled + 1;
            pemit t
              (Obs.Event.Complete
                 {
                   tenant = tenant_id t r.tenant;
                   outcome = `Cancelled;
                   sojourn_ns = int_of_float ((now -. r.enqueued) *. 1e9);
                 }))
          dropped;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        run_cbs t
    | Some r ->
        let attempt =
          1 + Option.value (Hashtbl.find_opt t.attempts r.id) ~default:0
        in
        Hashtbl.replace t.attempts r.id attempt;
        (* a fresh token per dispatch: the watchdog and [cancel] unwind
           THIS attempt; a retry starts with a clean slate *)
        let tok = Par.Runtime.cancel_token () in
        t.cancel_tok <- Some tok;
        t.running <- Some (r.id, Mclock.now_s ());
        t.running_deadline <- r.deadline;
        (* the deadline-aware promotion hint: near-SLO requests get a
           shorter effective beat period for their whole execution *)
        let hint = Sched.promotion_hint ~now:(Mclock.now_s ()) r in
        pemit t
          (Obs.Event.Dispatch { tenant = tenant_id t r.tenant; urgency = hint });
        Mutex.unlock t.m;
        (* retry re-admissions may have staged queue-full rejections *)
        run_cbs t;
        Par.Runtime.set_cancel (Some tok);
        Par.Runtime.set_urgency hint;
        let res = try Ok (exec r.payload) with e -> Error e in
        Par.Runtime.set_urgency 0;
        Par.Runtime.set_cancel None;
        let fin = Mclock.now_s () in
        Mutex.lock t.m;
        t.running <- None;
        t.cancel_tok <- None;
        if t.flagged = Some r.id then begin
          (* the wedged request finally finished (or was lease-
             cancelled): degradation clears, the stall stays on the
             books *)
          t.flagged <- None;
          t.degraded <- false;
          pemit t (Obs.Event.Degraded { on = false })
        end;
        let sojourn_s = fin -. r.enqueued in
        let complete outcome =
          pemit t
            (Obs.Event.Complete
               {
                 tenant = tenant_id t r.tenant;
                 outcome;
                 sojourn_ns = int_of_float (sojourn_s *. 1e9);
               })
        in
        (* [None] = the ticket stays open (a retry is scheduled);
           [fatal] = the session's scheduler state can no longer be
           trusted and the pool must warm-restart *)
        let fatal = ref None in
        let resolved : (completion, error) result option =
          match res with
          | Ok outcome ->
              let verdict = Sched.complete t.sched ~now:fin r in
              record_latency t ~tenant:r.tenant sojourn_s;
              complete (if verdict = `Met then `Met else `Missed);
              Some (Ok { outcome; sojourn_s; met_deadline = (verdict = `Met) })
          | Error (Par.Runtime.Cancelled reason) ->
              t.cancels <- t.cancels + 1;
              complete `Cancelled;
              Some (Error (Cancelled reason))
          | Error (Par.Runtime.Machine_fault _ as e) ->
              (* a scheduler-invariant violation: resolve the victim,
                 then tear the session down for a warm restart — its
                 mark lists and deques are untrusted *)
              t.failures <- t.failures + 1;
              complete `Failed;
              fatal := Some e;
              Some (Error (Failed e))
          | Error e when t.cfg.retries > 0 && t.cfg.retryable e ->
              let left =
                Option.value
                  (Hashtbl.find_opt t.budgets r.tenant)
                  ~default:t.cfg.retries
              in
              if left > 0 then begin
                Hashtbl.replace t.budgets r.tenant (left - 1);
                t.retried <- t.retried + 1;
                pemit t
                  (Obs.Event.Retry
                     { tenant = tenant_id t r.tenant; attempt = attempt + 1 });
                let delay =
                  Sched.backoff_s ~base_s:t.cfg.retry_backoff_s
                    ~max_s:t.cfg.retry_backoff_max_s ~seed:0 ~id:r.id ~attempt
                in
                t.retry_q <-
                  List.sort
                    (fun (a, _) (b, _) -> compare a b)
                    ((fin +. delay, r) :: t.retry_q);
                None
              end
              else begin
                t.failures <- t.failures + 1;
                complete `Failed;
                Some (Error (Retry_exhausted { attempts = attempt }))
              end
          | Error e ->
              t.failures <- t.failures + 1;
              complete `Failed;
              Some (Error (Failed e))
        in
        (match resolved with
        | Some res ->
            Hashtbl.remove t.attempts r.id;
            resolve_locked t r.id res
        | None -> ());
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        run_cbs t;
        (match !fatal with Some e -> raise e | None -> loop ())
  in
  loop ()

let watchdog_loop (t : t) : unit =
  (* short ticks so close never waits long for the join, regardless of
     the lease length *)
  let tick = Float.min 0.05 (Float.max 0.001 (t.cfg.lease_s /. 4.)) in
  while not (Atomic.get t.watchdog_stop) do
    Thread.delay tick;
    Mutex.lock t.m;
    let now = Mclock.now_s () in
    (match t.running with
    | Some (id, started)
      when t.flagged <> Some id && now -. started > t.cfg.lease_s ->
        t.stalls <- t.stalls + 1;
        t.flagged <- Some id;
        t.degraded <- true;
        pemit t (Obs.Event.Degraded { on = true });
        (* lease-based recovery: beyond marking the pool degraded, ask
           the wedged request to unwind.  A cooperative (polling)
           request aborts within a beat and the session serves on; one
           that never polls stays wedged — flagged, shedding — until it
           returns *)
        if t.cfg.cancel_on_lease then (
          match t.cancel_tok with
          | Some tok when not (Par.Runtime.cancel_requested tok) ->
              Par.Runtime.cancel tok `Lease;
              pemit t (Obs.Event.Cancel { reason = `Lease })
          | _ -> ())
    | _ -> ());
    (* deadline cancellation (config-gated): a request hopelessly past
       its SLO is unwound rather than left burning the session *)
    (match (t.cfg.deadline_cancel_slack_s, t.running) with
    | Some slack, Some _ when now > t.running_deadline +. slack -> (
        match t.cancel_tok with
        | Some tok when not (Par.Runtime.cancel_requested tok) ->
            Par.Runtime.cancel tok `Deadline;
            pemit t (Obs.Event.Cancel { reason = `Deadline })
        | _ -> ())
    | _ -> ());
    Mutex.unlock t.m
  done

(* ------------------------------------------------------------------ *)

(** [create ?config ()] spawns the warm session (one domain running
    the dispatch loop; the session itself spawns [domains − 1] worker
    domains) and the lease watchdog, and waits until the dispatch loop
    is live.  Raises whatever the session boot raised (e.g. the
    no-nested-sessions guard of {!Par.Runtime.run}).  Several pools
    may coexist in one process, each owning its own domain set. *)
let create ?(config = default_config) () : t =
  let t =
    {
      cfg = config;
      m = Mutex.create ();
      cv = Condition.create ();
      sched = Sched.create ~config:config.sched ();
      results = Hashtbl.create 64;
      cbs = Hashtbl.create 64;
      pending_cbs = [];
      next_id = 0;
      submitted = 0;
      shed = 0;
      failures = 0;
      cancelled = 0;
      cancels = 0;
      retried = 0;
      restarts = 0;
      running = None;
      running_deadline = infinity;
      cancel_tok = None;
      retry_q = [];
      attempts = Hashtbl.create 16;
      budgets = Hashtbl.create 16;
      flagged = None;
      stalls = 0;
      degraded = false;
      close_requested = false;
      shutdown_done = false;
      up = false;
      attempt_up = false;
      failed = None;
      rt_stats = None;
      domain = None;
      watchdog = None;
      watchdog_stop = Atomic.make false;
      ring = Option.map (fun tr -> Obs.Trace.track tr "server") config.tracer;
      lat_all = Obs.Hist.create ();
      lat_tenant = Hashtbl.create 16;
    }
  in
  let d =
    Domain.spawn (fun () ->
        (* the session loop: one warm Par.Runtime session normally; on
           a session-fatal error (a Machine_fault, or anything escaping
           the dispatch loop itself) the wreck is resolved and — within
           [max_restarts], provided the dying attempt had actually
           booted — a fresh session takes over the untouched queue *)
        let rec session () =
          Mutex.lock t.m;
          t.attempt_up <- false;
          Mutex.unlock t.m;
          match
            Par.Runtime.run ~config:t.cfg.runtime (fun () -> serve_main t)
          with
          | (), st ->
              Mutex.lock t.m;
              t.rt_stats <- Some st;
              Condition.broadcast t.cv;
              Mutex.unlock t.m
          | exception e ->
              Mutex.lock t.m;
              let can_restart =
                t.attempt_up && (not t.close_requested)
                && t.restarts < t.cfg.max_restarts
              in
              if can_restart then begin
                (* warm restart: the in-flight request (if any — its
                   delivery is uncertain) resolves Failed; queued and
                   parked-retry work survives untouched and is
                   re-admitted by the fresh dispatch loop *)
                t.restarts <- t.restarts + 1;
                (match t.running with
                | Some (id, _) ->
                    t.running <- None;
                    t.cancel_tok <- None;
                    t.failures <- t.failures + 1;
                    Hashtbl.remove t.attempts id;
                    resolve_locked t id (Error (Failed e))
                | None -> ());
                if t.flagged <> None then begin
                  t.flagged <- None;
                  t.degraded <- false;
                  pemit t (Obs.Event.Degraded { on = false })
                end;
                pemit t (Obs.Event.Restart { attempt = t.restarts });
                Condition.broadcast t.cv;
                Mutex.unlock t.m;
                run_cbs t;
                session ()
              end
              else begin
                (* boot failure, restart budget exhausted, or a close
                   racing the death: resolve everything so no awaiter
                   hangs, and surface the exception *)
                t.failed <- Some e;
                t.up <- true;
                (match t.running with
                | Some (id, _) ->
                    t.running <- None;
                    t.cancel_tok <- None;
                    t.failures <- t.failures + 1;
                    resolve_locked t id (Error (Failed e))
                | None -> ());
                let dropped =
                  Sched.drain t.sched @ List.map snd t.retry_q
                in
                t.retry_q <- [];
                List.iter
                  (fun (r : work Sched.req) ->
                    resolve_locked t r.id (Error (Failed e)))
                  dropped;
                Condition.broadcast t.cv;
                Mutex.unlock t.m;
                run_cbs t
              end
        in
        session ())
  in
  t.domain <- Some d;
  Mutex.lock t.m;
  while (not t.up) && t.failed = None do
    Condition.wait t.cv t.m
  done;
  let boot_failure = t.failed in
  Mutex.unlock t.m;
  (match boot_failure with
  | Some e ->
      Domain.join d;
      raise e
  | None -> ());
  if config.lease_s > 0. then
    t.watchdog <- Some (Thread.create watchdog_loop t);
  t

(** [submit t ~tenant ?deadline_s ?size ?on_resolve w] queues [w] and
    returns its ticket, or a typed rejection: [Rejected `Queue_full]
    at the admission cap, [Rejected `Shedding] while degraded,
    [Pool_closed] after (or racing) [close].  [deadline_s] is relative
    to now (default [default_slo_s]); [size] is the DRR service-size
    estimate (default 1).  [on_resolve] is invoked exactly once, from
    a pool-internal thread with no pool lock held, when the ticket
    resolves (it may call back into the pool) — the push-style
    completion hook the network front-end ({!Net}) rides instead of
    parking an [await] thread per in-flight request.  It fires only
    for admitted submissions (an immediate [Error] return means no
    ticket exists to resolve). *)
let submit (t : t) ~(tenant : string) ?deadline_s ?(size = 1)
    ?(on_resolve : ((completion, error) result -> unit) option) (w : work) :
    (ticket, error) result =
  Mutex.lock t.m;
  let r =
    if t.close_requested then Error Pool_closed
    else begin
      t.submitted <- t.submitted + 1;
      match t.failed with
      | Some e -> Error (Failed e)
      | None ->
          if t.degraded && t.cfg.shed_when_degraded then begin
            t.shed <- t.shed + 1;
            pemit t (Obs.Event.Reject { shed = true });
            Error (Rejected `Shedding)
          end
          else begin
            let now = Mclock.now_s () in
            let id = t.next_id in
            let req =
              {
                Sched.id;
                tenant;
                deadline =
                  now +. Option.value deadline_s ~default:t.cfg.default_slo_s;
                size;
                enqueued = now;
                payload = w;
              }
            in
            match Sched.admit t.sched req with
            | Error `Queue_full ->
                pemit t (Obs.Event.Reject { shed = false });
                Error (Rejected `Queue_full)
            | Ok () ->
                t.next_id <- id + 1;
                (match on_resolve with
                | Some cb -> Hashtbl.replace t.cbs id cb
                | None -> ());
                pemit t (Obs.Event.Admit { tenant = tenant_id t tenant });
                Condition.broadcast t.cv;
                Ok id
          end
    end
  in
  Mutex.unlock t.m;
  r

(** [await ?timeout_s t ticket] blocks until the ticket resolves.
    With a timeout it polls (stdlib [Condition] has no timed wait);
    [Timed_out] leaves the request in place — it may still resolve
    later.  Resolved tickets stay readable (idempotent await). *)
let await ?timeout_s (t : t) (ticket : ticket) : (completion, error) result =
  let deadline = Option.map (fun s -> Mclock.now_s () +. s) timeout_s in
  Mutex.lock t.m;
  let rec wait () =
    match Hashtbl.find_opt t.results ticket with
    | Some r ->
        Mutex.unlock t.m;
        r
    | None -> (
        match t.failed with
        | Some e ->
            Mutex.unlock t.m;
            Error (Failed e)
        | None -> (
            match deadline with
            | None ->
                Condition.wait t.cv t.m;
                wait ()
            | Some d ->
                if Mclock.now_s () > d then begin
                  Mutex.unlock t.m;
                  Error Timed_out
                end
                else begin
                  Mutex.unlock t.m;
                  Thread.delay 0.001;
                  Mutex.lock t.m;
                  wait ()
                end))
  in
  wait ()

(** [depth t]: queued + in-flight + parked-for-retry request count —
    the cheap backlog probe a join-shortest-queue router polls per
    placement decision. *)
let depth (t : t) : int =
  Mutex.lock t.m;
  let d =
    Sched.length t.sched
    + (match t.running with Some _ -> 1 | None -> 0)
    + List.length t.retry_q
  in
  Mutex.unlock t.m;
  d

(** [try_result t ticket] is a non-blocking probe. *)
let try_result (t : t) (ticket : ticket) : (completion, error) result option =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.results ticket in
  Mutex.unlock t.m;
  r

(** The in-flight request's ticket, if any (test probe). *)
let running (t : t) : ticket option =
  Mutex.lock t.m;
  let r = Option.map fst t.running in
  Mutex.unlock t.m;
  r

(** [cancel t ticket] aborts a request.  Still queued (or parked for
    retry): it is removed and its ticket resolves
    [Error (Cancelled reason)] immediately.  In flight: the attempt's
    cancel token is set and the task tree unwinds cooperatively at its
    next beat — completion can still win that race, in which case the
    awaiter sees the completed result.  Returns [false] when the
    ticket is unknown or already resolved. *)
let cancel ?(reason : Par.Runtime.cancel_reason = `Explicit) (t : t)
    (ticket : ticket) : bool =
  Mutex.lock t.m;
  let resolve_cancelled (r : work Sched.req) =
    t.cancels <- t.cancels + 1;
    Hashtbl.remove t.attempts r.id;
    resolve_locked t r.id (Error (Cancelled reason));
    pemit t (Obs.Event.Cancel { reason });
    pemit t
      (Obs.Event.Complete
         {
           tenant = tenant_id t r.tenant;
           outcome = `Cancelled;
           sojourn_ns =
             int_of_float ((Mclock.now_s () -. r.enqueued) *. 1e9);
         });
    Condition.broadcast t.cv
  in
  let hit =
    if Hashtbl.mem t.results ticket then false
    else
      match t.running with
      | Some (id, _) when id = ticket -> (
          match t.cancel_tok with
          | Some tok ->
              Par.Runtime.cancel tok reason;
              pemit t (Obs.Event.Cancel { reason });
              true
          | None -> false)
      | _ -> (
          match Sched.cancel t.sched ~id:ticket with
          | Some r ->
              resolve_cancelled r;
              true
          | None -> (
              match
                List.partition
                  (fun (_, (r : work Sched.req)) -> r.id = ticket)
                  t.retry_q
              with
              | (_, r) :: _, rest ->
                  t.retry_q <- rest;
                  resolve_cancelled r;
                  true
              | [], _ -> false))
  in
  Mutex.unlock t.m;
  run_cbs t;
  hit

(** [close t] stops admission, lets the in-flight request (if any)
    finish, resolves every still-queued ticket with [Pool_closed],
    tears the session down, and returns the final statistics
    (including the runtime's, when the session exited cleanly).
    Idempotent; concurrent callers wait for the first to finish. *)
let close (t : t) : stats =
  Mutex.lock t.m;
  let first = not t.close_requested in
  if first then begin
    t.close_requested <- true;
    Condition.broadcast t.cv
  end;
  Mutex.unlock t.m;
  if first then begin
    Atomic.set t.watchdog_stop true;
    Option.iter Thread.join t.watchdog;
    Option.iter Domain.join t.domain;
    Mutex.lock t.m;
    t.shutdown_done <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  end
  else begin
    Mutex.lock t.m;
    while not t.shutdown_done do
      Condition.wait t.cv t.m
    done;
    Mutex.unlock t.m
  end;
  stats t
