(** The serving layer's deterministic scheduling core: bounded
    admission, per-tenant deficit-round-robin fairness, and EDF
    deadline ordering — pure data-structure logic over an {e explicit}
    clock, so every policy is testable on a virtual clock with no
    domains, threads, or wall time involved ({!Suite_serve}).

    The concurrent wrapper ({!Pool}) holds one of these behind its
    mutex and feeds it monotonic timestamps; the tests feed it
    literals.  Structure:

    - {b Admission}: at most [cap] requests queued across all tenants;
      the [cap+1]-th is rejected with [`Queue_full] — the server's
      backpressure signal.  Draining below the cap re-opens admission
      (no hysteresis: the cap {e is} the policy).
    - {b Fairness}: one EDF heap per tenant, a deficit-round-robin
      ring across tenants (DRR, Shreedhar & Varghese).  Each visit
      grants the tenant [quantum] size-units of deficit; its head
      request is served while the deficit covers the request's [size].
      A tenant that goes idle forfeits its deficit, so fairness is
      over {e backlogged} tenants — a 10:1 offered-load skew still
      yields a ~1:1 served share while both queues are non-empty.
    - {b Deadlines}: within a tenant, requests are EDF-ordered (heap
      keyed by absolute deadline, FIFO on ties), so a tight-deadline
      request overtakes earlier-submitted slack ones.  Across tenants,
      a request whose slack has shrunk to [panic_slack] or below is
      served immediately regardless of whose DRR turn it is — its
      tenant's deficit still pays (possibly going negative), so panic
      service is borrowed against, not exempt from, fairness.
    - {b Accounting}: [complete] classifies each finished request
      against its deadline; {!stats} reports admitted / rejected /
      served / met / missed and the per-tenant served shares the
      fairness tests assert on. *)

type 'a req = {
  id : int;  (** unique, assigned by the caller; FIFO tiebreak key *)
  tenant : string;
  deadline : float;  (** absolute, on the caller's clock *)
  size : int;  (** service-size estimate in DRR units, ≥ 1 *)
  enqueued : float;  (** admission stamp, for sojourn and hint math *)
  payload : 'a;
}

type config = {
  cap : int;  (** max queued requests across all tenants *)
  quantum : int;  (** DRR deficit grant per visit, in size units *)
  panic_slack : float;
      (** serve any request whose [deadline − now] ≤ this immediately,
          bypassing the round-robin order (its tenant still pays) *)
}

let default_config = { cap = 512; quantum = 1; panic_slack = 0. }

(* ------------------------------------------------------------------ *)
(* A binary min-heap keyed by (deadline, id): the per-tenant EDF
   queue.  FIFO on deadline ties — ids are assigned in admission
   order. *)

module Heap = struct
  type 'a t = { mutable a : 'a req array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let is_empty h = h.n = 0

  let before (x : 'a req) (y : 'a req) : bool =
    x.deadline < y.deadline || (x.deadline = y.deadline && x.id < y.id)

  let push (h : 'a t) (r : 'a req) : unit =
    if h.n = Array.length h.a then begin
      let cap = max 8 (2 * Array.length h.a) in
      let a = Array.make cap r in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- r;
    h.n <- h.n + 1;
    (* sift up *)
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min (h : 'a t) : 'a req option = if h.n = 0 then None else Some h.a.(0)

  let pop_min (h : 'a t) : 'a req option =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        (* sift down *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.n && before h.a.(l) h.a.(!s) then s := l;
          if r < h.n && before h.a.(r) h.a.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let tmp = h.a.(!s) in
            h.a.(!s) <- h.a.(!i);
            h.a.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some top
    end

  let to_list (h : 'a t) : 'a req list =
    List.init h.n (fun i -> h.a.(i))
end

(* ------------------------------------------------------------------ *)

type 'a tenant = {
  name : string;
  heap : 'a Heap.t;
  mutable deficit : int;
  mutable in_ring : bool;
  mutable served : int;
}

type 'a t = {
  cfg : config;
  tenants : (string, 'a tenant) Hashtbl.t;
  ring : 'a tenant Queue.t;  (** backlogged tenants, round-robin order *)
  mutable queued : int;
  (* accounting *)
  mutable admitted : int;
  mutable rejected : int;
  mutable served_total : int;
  mutable met : int;
  mutable missed : int;
}

type stats = {
  queued : int;
  admitted : int;
  rejected : int;
  served : int;
  met : int;
  missed : int;
  per_tenant : (string * int) list;  (** served count per tenant *)
}

let create ?(config = default_config) () : 'a t =
  if config.cap < 1 then invalid_arg "Sched.create: cap must be >= 1";
  if config.quantum < 1 then invalid_arg "Sched.create: quantum must be >= 1";
  {
    cfg = config;
    tenants = Hashtbl.create 16;
    ring = Queue.create ();
    queued = 0;
    admitted = 0;
    rejected = 0;
    served_total = 0;
    met = 0;
    missed = 0;
  }

let length (s : _ t) : int = s.queued
let is_empty (s : _ t) : bool = s.queued = 0

let tenant_of (s : 'a t) (name : string) : 'a tenant =
  match Hashtbl.find_opt s.tenants name with
  | Some t -> t
  | None ->
      let t =
        { name; heap = Heap.create (); deficit = 0; in_ring = false;
          served = 0 }
      in
      Hashtbl.add s.tenants name t;
      t

(** [admit s r] queues [r] unless the global cap is reached — the
    backpressure boundary.  Rejections are counted but otherwise
    stateless: once the queue drains below [cap], admission re-opens
    by construction. *)
let admit (s : 'a t) (r : 'a req) : (unit, [ `Queue_full ]) result =
  if s.queued >= s.cfg.cap then begin
    s.rejected <- s.rejected + 1;
    Error `Queue_full
  end
  else begin
    let t = tenant_of s r.tenant in
    Heap.push t.heap { r with size = max 1 r.size };
    if not t.in_ring then begin
      t.in_ring <- true;
      Queue.add t s.ring
    end;
    s.queued <- s.queued + 1;
    s.admitted <- s.admitted + 1;
    Ok ()
  end

(* Bookkeeping shared by the DRR path and the panic override: charge
   the tenant and retire the head.  Ring membership is the caller's
   business — [in_ring] must mean "has exactly one entry in the ring
   queue", or a tenant could earn two quanta per sweep. *)
let take_head (s : 'a t) (t : 'a tenant) : 'a req =
  let r = Option.get (Heap.pop_min t.heap) in
  t.deficit <- t.deficit - r.size;
  t.served <- t.served + 1;
  s.queued <- s.queued - 1;
  s.served_total <- s.served_total + 1;
  r

(** [next s ~now] dispatches the next request, or [None] on an empty
    scheduler.  A head whose slack is ≤ [panic_slack] wins immediately
    (global EDF among panicked heads); otherwise deficit round-robin
    across backlogged tenants, EDF within the winner. *)
let next (s : 'a t) ~(now : float) : 'a req option =
  if s.queued = 0 then None
  else begin
    (* panic override: globally earliest-deadline head at or past the
       panic threshold *)
    let panicked =
      Queue.fold
        (fun acc t ->
          match Heap.min t.heap with
          | Some h when h.deadline -. now <= s.cfg.panic_slack -> (
              match acc with
              | Some (bh, _) when Heap.before bh h -> acc
              | _ -> Some (h, t))
          | _ -> acc)
        None s.ring
    in
    match panicked with
    | Some (_, t) ->
        (* the tenant keeps its ring slot; if this emptied its heap
           the sweep below lazily retires the stale entry *)
        Some (take_head s t)
    | None ->
        (* DRR sweep: each visited tenant earns a quantum; the first
           whose deficit covers its head is served and re-queued at
           the ring's tail.  Terminates because every full ring pass
           adds [quantum] to some backlogged tenant whose head size is
           finite. *)
        let rec sweep () =
          match Queue.take_opt s.ring with
          | None -> None (* unreachable while queued > 0 *)
          | Some t ->
              if Heap.is_empty t.heap then begin
                (* stale ring entry (emptied via the panic path) *)
                t.in_ring <- false;
                t.deficit <- 0;
                sweep ()
              end
              else begin
                t.deficit <- t.deficit + s.cfg.quantum;
                let head = Option.get (Heap.min t.heap) in
                if t.deficit >= head.size then begin
                  let r = take_head s t in
                  if Heap.is_empty t.heap then begin
                    (* idle tenants forfeit their deficit: fairness is
                       among the currently backlogged, not a credit
                       bank across idle periods *)
                    t.deficit <- 0;
                    t.in_ring <- false
                  end
                  else Queue.add t s.ring;
                  Some r
                end
                else begin
                  Queue.add t s.ring;
                  sweep ()
                end
              end
        in
        sweep ()
  end

(** [drain s] removes and returns everything still queued (close
    path); the scheduler is empty afterwards.  Drained requests are
    neither served nor deadline-classified. *)
let drain (s : 'a t) : 'a req list =
  let all =
    Hashtbl.fold (fun _ t acc -> Heap.to_list t.heap @ acc) s.tenants []
  in
  Hashtbl.iter
    (fun _ t ->
      t.heap.Heap.n <- 0;
      t.deficit <- 0;
      t.in_ring <- false)
    s.tenants;
  Queue.clear s.ring;
  s.queued <- 0;
  List.sort (fun (a : 'a req) b -> compare a.id b.id) all

(** [cancel s ~id] removes a still-queued request by ticket, returning
    it (the pool resolves its ticket with the typed [Cancelled]).
    Linear in the owning tenant's backlog — cancellation is the rare
    path; dispatch stays O(log n).  [None] when no queued request has
    that id (it may be running, resolved, or unknown). *)
let cancel (s : 'a t) ~(id : int) : 'a req option =
  let found = ref None in
  Hashtbl.iter
    (fun _ (t : 'a tenant) ->
      if Option.is_none !found then begin
        let keep =
          List.filter
            (fun (r : 'a req) ->
              if r.id = id && Option.is_none !found then begin
                found := Some r;
                false
              end
              else true)
            (Heap.to_list t.heap)
        in
        if Option.is_some !found then begin
          (* rebuild the EDF heap without the victim; an emptied tenant
             keeps its ring entry and is lazily retired by the next
             sweep, exactly like the panic path *)
          t.heap.Heap.n <- 0;
          List.iter (Heap.push t.heap) keep;
          if Heap.is_empty t.heap then t.deficit <- 0
        end
      end)
    s.tenants;
  (match !found with Some _ -> s.queued <- s.queued - 1 | None -> ());
  !found

(** [complete s ~now r] classifies a finished request against its
    deadline and returns the verdict. *)
let complete (s : _ t) ~(now : float) (r : _ req) : [ `Met | `Missed ] =
  if now <= r.deadline then begin
    s.met <- s.met + 1;
    `Met
  end
  else begin
    s.missed <- s.missed + 1;
    `Missed
  end

let stats (s : _ t) : stats =
  {
    queued = s.queued;
    admitted = s.admitted;
    rejected = s.rejected;
    served = s.served_total;
    met = s.met;
    missed = s.missed;
    per_tenant =
      Hashtbl.fold
        (fun name (t : _ tenant) acc -> (name, t.served) :: acc)
        s.tenants []
      |> List.sort compare;
  }

(* ------------------------------------------------------------------ *)

(** [backoff_s ~base_s ~max_s ~seed ~id ~attempt]: the retry delay
    before attempt [attempt + 1] of request [id] — exponential in the
    attempt number with deterministic jitter, a pure function of its
    arguments so the virtual-clock tests can assert exact values and
    two runs of one seed schedule retries identically.  The jitter is
    a splitmix-style hash of (seed, id, attempt) mapped into
    [0.5, 1.0] — full-jitter's thundering-herd spread without
    randomness the audit could not replay.  Clamped to [max_s]. *)
let backoff_s ~(base_s : float) ~(max_s : float) ~(seed : int) ~(id : int)
    ~(attempt : int) : float =
  let expo = base_s *. float_of_int (1 lsl min (max 0 (attempt - 1)) 16) in
  let h = ref (Int64.of_int ((seed * 0x1000193) lxor (id * 31) lxor attempt)) in
  h := Int64.add !h 0x9E3779B97F4A7C15L;
  let z = !h in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let u =
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
  in
  Float.min max_s (expo *. (0.5 +. (0.5 *. u)))

(** [promotion_hint ~now r] maps a request's remaining slack to a
    {!Par.Runtime.set_urgency} shift: 0 with more than half its
    deadline budget left, rising by 1 as the remaining fraction
    halves, up to 6 for overdue work.  Each step halves the effective
    beat period, so a request near its SLO promotes its latent
    parallelism roughly twice as eagerly per step — the deadline-aware
    promotion policy of the laser EDF notes.  Pure, for the
    monotonicity test. *)
let promotion_hint ~(now : float) (r : _ req) : int =
  let budget = r.deadline -. r.enqueued in
  let slack = r.deadline -. now in
  if slack <= 0. then 6
  else if budget <= 0. then 6
  else begin
    let frac = slack /. budget in
    (* number of halvings of the remaining budget fraction below 1 *)
    let rec steps acc f = if f > 0.5 || acc >= 6 then acc else steps (acc + 1) (f *. 2.) in
    steps 0 frac
  end
