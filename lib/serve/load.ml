(** Seeded open-loop synthetic load for the serving layer, and the
    exactly-once audit around it — the measurement half of
    [bench --serve-bench] and the CI serve-smoke gate.

    The arrival process is open-loop (Schroeder et al.'s distinction:
    arrivals do not wait for completions, so queueing delay is
    visible, not hidden by admission of the load generator itself):
    Poisson arrivals at [rate_rps], tenants drawn from a Zipf-skewed
    distribution, kernel sizes from a small/medium/large mix, a slice
    of requests with deliberately tight deadlines.  Everything is
    drawn from one {!Sim.Prng} stream, so a (seed, spec) pair is one
    reproducible workload.

    Every request's thunk bumps a per-request execution counter and
    computes a size-keyed checksum; the audit then counts {e lost}
    (admitted but never executed), {e duplicated} (executed more than
    once), and {e mismatched} (wrong checksum) requests — the
    zero-lost/zero-duplicated acceptance gate — alongside the latency
    distribution (p50/p99), goodput (deadline-met completions per
    second of wall time), and the reject rate. *)

type spec = {
  requests : int;
  tenants : int;  (** Zipf-skewed: tenant k has weight 1/(k+1) *)
  rate_rps : float;  (** Poisson arrival rate; 0 = submit as fast as
                         possible (closed submission, still async) *)
  seed : int;
  slo_s : float;  (** default deadline, relative to arrival *)
  tight_frac : float;  (** fraction of requests with slo/10 deadlines *)
  sizes : (int * float) list;  (** (kernel n, weight) mix *)
}

let default_spec =
  {
    requests = 100_000;
    tenants = 8;
    rate_rps = 50_000.;
    seed = 0x5E12E;
    slo_s = 0.05;
    tight_frac = 0.1;
    sizes = [ (512, 0.70); (4096, 0.25); (16384, 0.05) ];
  }

type report = {
  spec : spec;
  elapsed_s : float;
  offered : int;
  admitted : int;
  rejected_full : int;
  rejected_shed : int;
  completed : int;
  failed : int;
  cancelled : int;  (** resolved as a typed {!Pool.Cancelled} *)
  retried : int;  (** pool-level retry attempts (from {!Pool.stats}) *)
  restarts : int;  (** warm session restarts (from {!Pool.stats}) *)
  lost : int;  (** admitted but never resolved/executed *)
  duplicated : int;  (** executed more than once (exactly-once breach) *)
  mismatched : int;  (** wrong checksum *)
  met : int;
  missed : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  pool_latency : Obs.Hist.summary;  (** the pool's own histogram view *)
  latency_per_tenant : (string * Obs.Hist.summary) list;
  goodput_rps : float;  (** deadline-met completions / elapsed *)
  throughput_rps : float;
      (** wall-clock requests/sec: {e all} completions / elapsed,
          deadline-blind — the capacity axis of the trajectory, next
          to the SLO-weighted [goodput_rps] *)
  reject_rate : float;  (** rejections / offered *)
  per_tenant : (string * int) list;  (** served per tenant *)
}

(* The mini-kernel: fill-and-fold over [n] slots through the pool's
   executor, so every request exercises par_for promotion.  The value
   depends only on (i, n): the expected checksum per size is computed
   once, serially, and any torn parallel write or mis-sliced loop
   shows up as a mismatch. *)
let kernel (n : int) (module E : Workloads.Exec.S) : int =
  let a = Array.make n 0 in
  E.par_for ~lo:0 ~hi:n (fun i -> a.(i) <- (i * 0x9E3779B1) land 0xFFFFFF);
  Array.fold_left ( + ) 0 a

let expected_checksum (n : int) : int = kernel n (module Workloads.Exec.Serial)

(* ------------------------------------------------------------------ *)

let pick_weighted (rng : Sim.Prng.t) (weights : float array) : int =
  let total = Array.fold_left ( +. ) 0. weights in
  let x = Sim.Prng.float_range rng total in
  let acc = ref 0. and chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if x < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen

let percentile (sorted : float array) (p : float) : float =
  match Array.length sorted with
  | 0 -> nan
  | n ->
      let idx = int_of_float (p *. float_of_int (n - 1)) in
      sorted.(max 0 (min (n - 1) idx))

(** [run pool spec] drives the load against [pool] and audits the
    outcome.  The submitting thread is the caller's; completions are
    awaited after the last arrival (open-loop: submission never blocks
    on service).  [await_timeout_s] bounds the post-arrival drain so a
    wedged pool yields a report with [lost > 0] instead of hanging. *)
let run ?(await_timeout_s = 120.) ?(interrupted = fun () -> false)
    (pool : Pool.t) (spec : spec) : report =
  if spec.requests < 0 then invalid_arg "Load.run: negative request count";
  let rng = Sim.Prng.create ~seed:spec.seed in
  let sizes = Array.of_list (List.map fst spec.sizes) in
  let size_weights = Array.of_list (List.map snd spec.sizes) in
  let expected = Array.map expected_checksum sizes in
  let tenant_weights =
    Array.init (max 1 spec.tenants) (fun k -> 1. /. float_of_int (k + 1))
  in
  let exec_counts = Array.init spec.requests (fun _ -> Atomic.make 0) in
  (* per request: ticket (if admitted) and its size index *)
  let tickets = Array.make spec.requests None in
  let size_of = Array.make spec.requests 0 in
  let rejected_full = ref 0 and rejected_shed = ref 0 in
  let t0 = Mclock.now_s () in
  let arrival = ref t0 in
  (* [interrupted] is polled between arrivals: a SIGINT-style stop
     request ends submission early and falls through to the normal
     drain + audit, so a Ctrl-C'd run still reports and exits clean *)
  let stopped = ref false in
  let offered = ref 0 in
  for i = 0 to spec.requests - 1 do
    if not !stopped then begin
    if interrupted () then stopped := true else begin
    incr offered;
    (* Poisson: exponential inter-arrival times *)
    if spec.rate_rps > 0. then begin
      arrival :=
        !arrival +. Sim.Prng.exponential rng ~mean:(1. /. spec.rate_rps);
      (* open-loop pacing: busy-wait to the scheduled arrival (sleepf
         granularity is far coarser than the inter-arrival times) *)
      while Mclock.now_s () < !arrival do
        Domain.cpu_relax ()
      done
    end;
    let tenant = Printf.sprintf "t%d" (pick_weighted rng tenant_weights) in
    let si = pick_weighted rng size_weights in
    size_of.(i) <- si;
    let n = sizes.(si) in
    let tight = Sim.Prng.float rng < spec.tight_frac in
    let deadline_s = if tight then spec.slo_s /. 10. else spec.slo_s in
    let counter = exec_counts.(i) in
    let work =
      (* the counter bumps at the END of the kernel, so it counts
         {e completed} executions: a chaos fault or cancellation that
         unwinds mid-kernel leaves it untouched, and a retried attempt
         that finally completes counts exactly once *)
      Pool.Thunk
        (fun e ->
          let c = kernel n e in
          Atomic.incr counter;
          c)
    in
    (* DRR size units ~ relative kernel cost *)
    let size = max 1 (n / sizes.(0)) in
    (match Pool.submit pool ~tenant ~deadline_s ~size work with
    | Ok ticket -> tickets.(i) <- Some ticket
    | Error (Pool.Rejected `Queue_full) -> incr rejected_full
    | Error (Pool.Rejected `Shedding) -> incr rejected_shed
    | Error _ -> incr rejected_full)
    end
    end
  done;
  (* drain: await every admitted request *)
  let completed = ref 0 and failed = ref 0 and lost = ref 0 in
  let met = ref 0 and missed = ref 0 and mismatched = ref 0 in
  let cancelled = ref 0 in
  let sojourns = ref [] in
  Array.iteri
    (fun i ticket ->
      match ticket with
      | None -> ()
      | Some ticket -> (
          match Pool.await ~timeout_s:await_timeout_s pool ticket with
          | Ok { outcome = Pool.Checksum c; sojourn_s; met_deadline } ->
              incr completed;
              if met_deadline then incr met else incr missed;
              if c <> expected.(size_of.(i)) then incr mismatched;
              sojourns := sojourn_s :: !sojourns
          | Ok _ -> incr mismatched
          | Error Pool.Timed_out -> incr lost
          | Error (Pool.Cancelled _) -> incr cancelled
          | Error _ -> incr failed))
    tickets;
  let elapsed_s = Mclock.now_s () -. t0 in
  (* exactly-once audit over the raw execution counters: a request
     that ran twice is a duplicate regardless of what its ticket says
     (lost — admitted but unresolved — is counted off Timed_out
     above) *)
  let duplicated =
    Array.fold_left
      (fun acc c -> if Atomic.get c > 1 then acc + 1 else acc)
      0 exec_counts
  in
  let sorted = Array.of_list !sojourns in
  Array.sort compare sorted;
  let admitted =
    Array.fold_left
      (fun acc t -> match t with Some _ -> acc + 1 | None -> acc)
      0 tickets
  in
  let mean_ms =
    if Array.length sorted = 0 then nan
    else
      1e3 *. Array.fold_left ( +. ) 0. sorted /. float_of_int (Array.length sorted)
  in
  let ps = Pool.stats pool in
  {
    spec;
    elapsed_s;
    offered = !offered;
    admitted;
    rejected_full = !rejected_full;
    rejected_shed = !rejected_shed;
    completed = !completed;
    failed = !failed;
    cancelled = !cancelled;
    retried = ps.retried;
    restarts = ps.restarts;
    lost = !lost;
    duplicated;
    mismatched = !mismatched;
    met = !met;
    missed = !missed;
    p50_ms = 1e3 *. percentile sorted 0.50;
    p95_ms = 1e3 *. percentile sorted 0.95;
    p99_ms = 1e3 *. percentile sorted 0.99;
    mean_ms;
    pool_latency = ps.latency;
    latency_per_tenant = ps.latency_per_tenant;
    goodput_rps = (if elapsed_s > 0. then float_of_int !met /. elapsed_s else 0.);
    throughput_rps =
      (if elapsed_s > 0. then float_of_int !completed /. elapsed_s else 0.);
    reject_rate =
      (if !offered = 0 then 0.
       else
         float_of_int (!rejected_full + !rejected_shed)
         /. float_of_int !offered);
    per_tenant = ps.sched.per_tenant;
  }

let pp_report (ppf : Format.formatter) (r : report) : unit =
  Format.fprintf ppf
    "@[<v>offered %d, admitted %d, rejected %d (full %d, shed %d), reject \
     rate %.3f@,\
     completed %d (met %d, missed %d), failed %d, cancelled %d, retried %d, \
     restarts %d, lost %d, duplicated %d, mismatched %d@,\
     latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, mean %.3f ms@,\
     throughput %.0f req/s (goodput %.0f req/s) over %.2f s@,\
     served per tenant: %a@]"
    r.offered r.admitted
    (r.rejected_full + r.rejected_shed)
    r.rejected_full r.rejected_shed r.reject_rate r.completed r.met r.missed
    r.failed r.cancelled r.retried r.restarts r.lost r.duplicated r.mismatched
    r.p50_ms r.p95_ms r.p99_ms r.mean_ms r.throughput_rps r.goodput_rps
    r.elapsed_s
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (t, n) -> Format.fprintf ppf "%s=%d" t n))
    r.per_tenant
